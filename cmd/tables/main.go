// Command tables regenerates the paper's evaluation tables (I–VII)
// end to end on the synthetic benchmark suite.
//
// Usage:
//
//	tables [-table all|1|2|3|4|5|6|7] [-scale N] [-ilptime 60s]
//
// -scale shrinks the Table I circuits by the given factor (dimension
// and net count); -scale 1 runs the full sizes, which takes hours
// (dominated by the exact DVI ILP, exactly as the paper reports for
// Gurobi).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
)

func main() {
	which := flag.String("table", "all", "table to regenerate: all, 1..7")
	scale := flag.Int("scale", 8, "benchmark shrink factor (1 = full Table I sizes)")
	ilpTime := flag.Duration("ilptime", time.Minute, "ILP time limit per circuit")
	flag.Parse()

	circuits := bench.ScaledSuite(*scale)
	run := func(name string, fn func() (*bench.Table, error)) {
		if *which != "all" && *which != name {
			return
		}
		start := time.Now()
		t, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
	}

	run("1", func() (*bench.Table, error) { return bench.Table1(circuits), nil })
	run("2", func() (*bench.Table, error) { return bench.Table2(), nil })
	run("3", func() (*bench.Table, error) { return bench.TableIIIIV(circuits, coloring.SIM, *ilpTime) })
	run("4", func() (*bench.Table, error) { return bench.TableIIIIV(circuits, coloring.SID, *ilpTime) })
	run("5", func() (*bench.Table, error) { return bench.TableV(circuits, *ilpTime) })
	run("6", func() (*bench.Table, error) { return bench.TableVIVII(circuits, coloring.SIM, *ilpTime) })
	run("7", func() (*bench.Table, error) { return bench.TableVIVII(circuits, coloring.SID, *ilpTime) })

	if *which != "all" && !strings.ContainsAny(*which, "1234567") {
		fmt.Fprintf(os.Stderr, "tables: unknown -table %q\n", *which)
		os.Exit(2)
	}
}
