// Command sadprouted serves the full SADP-aware routing flow over an
// HTTP JSON API: routing-as-a-service on top of internal/service.
//
// Usage:
//
//	sadprouted [-mode standalone|coordinator|worker]
//	           [-addr :8080] [-queue 64] [-workers 2] [-cache 128]
//	           [-job-timeout 10m] [-drain-timeout 60s] [-addr-file f]
//	           [-data-dir d] [-max-request-bytes n] [-max-attempts 2]
//	           [-degrade] [-quiet] [-pprof-addr 127.0.0.1:6060]
//	           [-no-arena]
//	           [-coordinator-addr http://host:port] [-worker-id w1]
//	           [-lease-ttl 15s] [-heartbeat-every 1s]
//	           [-verify-uploads] [-reject-budget 3]
//	           [-hedge-multiple 0] [-hedge-min-samples 8]
//	           [-spool-dir d] [-upload-retries 0]
//	           [-chaos latency|corrupt|slow|spool] [-chaos-seed 1]
//
// Modes (see the README "Distributed serving" section):
//
//	standalone  (default) one process routes everything in-process.
//	coordinator owns the public /v1/jobs API, the journal and the
//	            result cache, and shards execution across workers over
//	            /cluster/v1/{pull,result,heartbeat}.
//	worker      pulls jobs from -coordinator-addr and executes them;
//	            -workers sets its concurrent slots.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, GET /healthz,
// GET /metrics. See the README "Serving" section for a curl
// walkthrough. On SIGTERM/SIGINT the daemon stops accepting
// submissions, drains every accepted job, then exits. With -data-dir
// set, accepted jobs survive a hard crash (kill -9): the journal is
// replayed on restart and unfinished jobs re-run. See the README
// "Crash recovery & degraded modes" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "standalone", "standalone, coordinator or worker")
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port); unused in worker mode")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file (for port-0 runs)")
	queue := flag.Int("queue", 64, "job queue capacity; submissions beyond it get 429")
	workers := flag.Int("workers", 2, "routing worker pool size (worker mode: concurrent slots)")
	cache := flag.Int("cache", 128, "result cache capacity (entries)")
	storedJobs := flag.Int("stored-jobs", 1024, "max finished jobs kept for polling")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job wall-clock limit (0 = none); also caps the DVI ILP budget")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max time to drain in-flight jobs on shutdown before canceling them")
	maxBody := flag.Int64("max-request-bytes", 8<<20, "max request body bytes; larger submissions get 413")
	flag.Int64Var(maxBody, "max-body", 8<<20, "alias for -max-request-bytes")
	dataDir := flag.String("data-dir", "", "directory for the durable job journal; empty disables crash recovery")
	maxAttempts := flag.Int("max-attempts", 2, "execution attempts per job before quarantine/interruption")
	degrade := flag.Bool("degrade", false, "enable deadline-driven degraded modes for every job by default")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off); bind to localhost, the profiles expose internals")
	noArena := flag.Bool("no-arena", false, "disable per-worker router arenas (allocate each job's routing state fresh)")
	coordAddr := flag.String("coordinator-addr", "", "worker mode: coordinator base URL (http://host:port)")
	workerID := flag.String("worker-id", "", "worker mode: this worker's name (default hostname-pid)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "coordinator mode: job lease TTL; a worker silent this long loses its jobs")
	heartbeatEvery := flag.Duration("heartbeat-every", time.Second, "worker mode: lease renewal period (keep well under -lease-ttl)")
	verifyUploads := flag.Bool("verify-uploads", false, "coordinator mode: run the full independent verifier on every uploaded solution (structural checks are always on)")
	rejectBudget := flag.Int("reject-budget", 0, "coordinator mode: rejected uploads a worker may accumulate before quarantine (0 = default 3; negative = never quarantine)")
	hedgeMultiple := flag.Float64("hedge-multiple", 0, "coordinator mode: hedge jobs running longer than this multiple of the fleet median to a second worker (0 = off)")
	hedgeMinSamples := flag.Int("hedge-min-samples", 0, "coordinator mode: completed jobs required before the median is trusted for hedging (default 8)")
	spoolDir := flag.String("spool-dir", "", "worker mode: durable result spool directory; finished results are fsynced here before upload and replayed after a restart")
	uploadRetries := flag.Int("upload-retries", 0, "worker mode: result upload attempts (0 = default: 5 without -spool-dir, unbounded with; negative = unbounded)")
	chaos := flag.String("chaos", "", "worker mode: arm a chaos preset (latency, corrupt, slow, spool) — testing only")
	chaosSeed := flag.Int64("chaos-seed", 1, "worker mode: seed for the -chaos fault sites and the retry jitter")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}

	if *mode == "worker" {
		wcfg := cluster.WorkerConfig{
			Coordinator:    *coordAddr,
			ID:             *workerID,
			Slots:          *workers,
			HeartbeatEvery: *heartbeatEvery,
			SpoolDir:       *spoolDir,
			UploadRetries:  *uploadRetries,
			RetrySeed:      *chaosSeed,
			NoArena:        *noArena,
			Logf:           logf,
		}
		if err := armChaos(*chaos, *chaosSeed, &wcfg); err != nil {
			fmt.Fprintf(os.Stderr, "sadprouted: %v\n", err)
			return 2
		}
		return runWorker(wcfg)
	}
	if *mode != "standalone" && *mode != "coordinator" {
		fmt.Fprintf(os.Stderr, "sadprouted: unknown -mode %q (standalone, coordinator or worker)\n", *mode)
		return 2
	}

	svc, err := service.New(service.Config{
		QueueSize:        *queue,
		Workers:          *workers,
		CacheSize:        *cache,
		MaxStoredJobs:    *storedJobs,
		JobTimeout:       *jobTimeout,
		MaxBodyBytes:     *maxBody,
		DataDir:          *dataDir,
		MaxAttempts:      *maxAttempts,
		DegradeByDefault: *degrade,
		NoArena:          *noArena,
		ExternalExec:     *mode == "coordinator",
		Logf:             logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadprouted: %v\n", err)
		return 1
	}

	handler := svc.Handler()
	var coord *cluster.Coordinator
	if *mode == "coordinator" {
		coord = cluster.NewCoordinator(svc, cluster.CoordinatorConfig{
			LeaseTTL:        *leaseTTL,
			VerifyUploads:   *verifyUploads,
			RejectBudget:    *rejectBudget,
			HedgeMultiple:   *hedgeMultiple,
			HedgeMinSamples: *hedgeMinSamples,
			Logf:            logf,
		})
		handler = coord.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadprouted: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sadprouted: write -addr-file: %v\n", err)
			return 1
		}
	}
	httpSrv := &http.Server{Handler: handler}

	// The profiling endpoints live on their own listener, never on the
	// API port: the API handler is a dedicated mux, so /debug/pprof is
	// unreachable through it even though the pprof import registers on
	// the default mux. Off unless -pprof-addr is set.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sadprouted: pprof listen: %v\n", err)
			return 1
		}
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("sadprouted: pprof server: %v", err)
			}
		}()
		log.Printf("sadprouted: pprof on http://%s/debug/pprof/", pln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("sadprouted: %s listening on %s (queue=%d workers=%d cache=%d)", *mode, ln.Addr(), *queue, *workers, *cache)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sadprouted: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	log.Printf("sadprouted: shutdown signal, draining jobs (timeout %s)", *drainTimeout)

	// Drain the job queue first so clients can still poll results of
	// in-flight work, then stop the HTTP listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	var drainErr error
	if coord != nil {
		drainErr = coord.Shutdown(drainCtx)
	} else {
		drainErr = svc.Shutdown(drainCtx)
	}
	if drainErr != nil {
		log.Printf("sadprouted: drain incomplete: %v", drainErr)
		code = 1
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		log.Printf("sadprouted: http shutdown: %v", err)
		code = 1
	}
	log.Printf("sadprouted: exit")
	return code
}

// armChaos configures one named fault schedule on a worker config.
// The presets mirror the internal/cluster chaos suite; they exist so
// the shell e2e can drive the same fault classes through real
// processes.
func armChaos(preset string, seed int64, cfg *cluster.WorkerConfig) error {
	if preset == "" {
		return nil
	}
	inj := fault.New(seed)
	switch preset {
	case "latency":
		// A slow, duplicating link: delayed pulls and result uploads,
		// with some uploads delivered twice.
		inj.Configure("rpc.latency:"+cluster.PathPull, fault.SiteConfig{Times: -1, Prob: 0.3})
		inj.Configure("rpc.latency:"+cluster.PathResult, fault.SiteConfig{Times: -1, Prob: 0.5})
		inj.Configure("rpc.dup:"+cluster.PathResult, fault.SiteConfig{Times: -1, Prob: 0.5})
		cfg.Client = &http.Client{Transport: &fault.Transport{Injector: inj, Latency: 50 * time.Millisecond}}
	case "corrupt":
		// Two one-off wire flips on result uploads, after the first
		// clean one; the coordinator's validator must catch both.
		inj.Configure("rpc.corrupt:"+cluster.PathResult, fault.SiteConfig{After: 1, Times: 2})
		cfg.Client = &http.Client{Transport: &fault.Transport{Injector: inj}}
	case "slow":
		// A straggling box: half the jobs stall before running, the
		// hedging sweeper's target.
		inj.Configure("worker.slow", fault.SiteConfig{Times: -1, Prob: 0.5})
		cfg.Fault = inj
		cfg.SlowDelay = 2 * time.Second
	case "spool":
		// Die once in the spool-to-upload window; the next run of the
		// same worker (same -spool-dir) must replay the result.
		if cfg.SpoolDir == "" {
			return fmt.Errorf("-chaos spool requires -spool-dir")
		}
		inj.Configure("spool.crash", fault.SiteConfig{Times: 1})
		cfg.Fault = inj
	default:
		return fmt.Errorf("unknown -chaos preset %q (latency, corrupt, slow, spool)", preset)
	}
	return nil
}

// runWorker runs the headless pull-execute client until SIGTERM. A
// signal lets the current jobs finish and upload before exiting.
func runWorker(cfg cluster.WorkerConfig) int {
	if cfg.Coordinator == "" {
		fmt.Fprintln(os.Stderr, "sadprouted: -mode worker requires -coordinator-addr")
		return 2
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	w := cluster.NewWorker(cfg)
	log.Printf("sadprouted: worker %s pulling from %s (slots=%d)", cfg.ID, cfg.Coordinator, cfg.Slots)
	err := w.Run(ctx)
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "sadprouted: worker: %v\n", err)
		return 1
	}
	log.Printf("sadprouted: worker %s exit", cfg.ID)
	return 0
}
