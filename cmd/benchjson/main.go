// Command benchjson runs the routing-only benchmark (the workload of
// BenchmarkRoutingOnly, extended to a whole suite) and records the
// result as JSON, so performance numbers accumulate as comparable
// artifacts instead of scrollback.
//
// Usage:
//
//	benchjson [-suite tiny|scaled|full|multipin] [-scale 4] [-label after]
//	          [-iters 3] [-workers 1] [-out BENCH_1.json]
//	          [-baseline BENCH_1.json] [-tolerance 3]
//
// Without -out it writes the first free BENCH_<n>.json in the current
// directory. When -out names an existing file the new run is appended
// to its "runs" list — a before/after trajectory lives in one file.
//
// With -baseline the command is a regression gate: after measuring it
// compares against the baseline file's most recent run of the same
// suite and worker count. Wirelength and via counts must match exactly
// (routing is deterministic; a mismatch is a correctness regression,
// not noise) and the suite's total routing time must stay within
// -tolerance times the baseline, or the command exits non-zero. CI
// runs the tiny suite this way on every push.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"

	sadproute "repro"
)

// File is the on-disk BENCH_<n>.json document.
type File struct {
	Benchmark string `json:"benchmark"`
	Runs      []Run  `json:"runs"`
}

// Run is one measured pass over the suite.
type Run struct {
	Label     string    `json:"label"`
	Date      string    `json:"date"`
	GoVersion string    `json:"go"`
	Suite     string    `json:"suite"`
	Workers   int       `json:"workers"`
	Iters     int       `json:"iters"`
	Circuits  []Circuit `json:"circuits"`
	// TotalNsPerRoute sums the per-circuit minima: the suite's
	// routing-only ns/op.
	TotalNsPerRoute int64 `json:"total_ns_per_route"`
}

// Circuit is one circuit's result; NsPerRoute is the minimum over the
// run's iterations (the standard noise-resistant estimator).
type Circuit struct {
	Name       string `json:"name"`
	NsPerRoute int64  `json:"ns_per_route"`
	Wirelength int    `json:"wirelength"`
	Vias       int    `json:"vias"`
}

func main() {
	suiteFlag := flag.String("suite", "", "suite to run: tiny, scaled, full or multipin (default tiny, or REPRO_BENCH_SCALE)")
	scale := flag.Int("scale", 4, "shrink factor for -suite scaled")
	label := flag.String("label", "run", "label of this run (e.g. seed, after)")
	iters := flag.Int("iters", 3, "routing repetitions per circuit (minimum time is recorded)")
	workers := flag.Int("workers", 1, "router Workers setting")
	out := flag.String("out", "", "output file (default: first free BENCH_<n>.json; in gate mode empty means no file)")
	baseline := flag.String("baseline", "", "gate mode: compare against this file's latest same-suite run")
	tolerance := flag.Float64("tolerance", 3, "gate mode: allowed slowdown factor vs the baseline")
	flag.Parse()

	suite, suiteName, err := pickSuite(*suiteFlag, *scale)
	if err != nil {
		fail(err)
	}
	run := Run{
		Label:     *label,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Suite:     suiteName,
		Workers:   *workers,
		Iters:     *iters,
	}
	for _, c := range suite {
		nl := bench.Generate(c)
		var best time.Duration
		var wl, vias int
		for i := 0; i < *iters; i++ {
			start := time.Now()
			res, err := sadproute.Route(nl, sadproute.Config{
				SADP: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
				Workers: *workers,
			})
			if err != nil {
				fail(fmt.Errorf("routing %s: %w", c.Name, err))
			}
			if d := time.Since(start); i == 0 || d < best {
				best = d
			}
			wl, vias = res.Stats.Wirelength, res.Stats.Vias
		}
		run.Circuits = append(run.Circuits, Circuit{
			Name: c.Name, NsPerRoute: best.Nanoseconds(),
			Wirelength: wl, Vias: vias,
		})
		run.TotalNsPerRoute += best.Nanoseconds()
		fmt.Printf("%-8s %12d ns/route  WL %d  #Vias %d\n", c.Name, best.Nanoseconds(), wl, vias)
	}

	if *out != "" || *baseline == "" {
		if err := writeRun(*out, run); err != nil {
			fail(err)
		}
	}
	if *baseline != "" {
		if err := gate(*baseline, run, *tolerance); err != nil {
			fail(err)
		}
		fmt.Printf("gate ok: within %.1fx of baseline %s\n", *tolerance, *baseline)
	}
}

func pickSuite(name string, scale int) ([]bench.Circuit, string, error) {
	switch name {
	case "tiny":
		return bench.TinySuite(), "tiny", nil
	case "scaled":
		if scale < 1 {
			return nil, "", fmt.Errorf("-scale must be >= 1, got %d", scale)
		}
		return bench.ScaledSuite(scale), fmt.Sprintf("scaled/%d", scale), nil
	case "full":
		return bench.Suite(), "full", nil
	case "multipin":
		return bench.TinyMultiPinSuite(), "multipin", nil
	case "":
		// Back-compat: the env knob predates the -suite flag.
		if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 1 {
				return bench.ScaledSuite(n), fmt.Sprintf("scaled/%d", n), nil
			}
		}
		return bench.TinySuite(), "tiny", nil
	}
	return nil, "", fmt.Errorf("unknown -suite %q (want tiny, scaled, full or multipin)", name)
}

// writeRun appends the run to path (or the first free BENCH_<n>.json).
func writeRun(path string, run Run) error {
	doc := File{Benchmark: "RoutingOnly"}
	if path == "" {
		for n := 1; ; n++ {
			path = fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				break
			}
		}
	} else if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s: %w", path, err)
		}
	}
	doc.Runs = append(doc.Runs, run)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d runs, total %d ns/route)\n", path, len(doc.Runs), run.TotalNsPerRoute)
	return nil
}

// gate compares the measured run against the most recent same-suite,
// same-worker-count run in the baseline file. Metrics must be
// identical; time may drift up to the tolerance factor (CI machines
// are noisy — the gate exists to catch order-of-magnitude regressions,
// not percent-level ones).
func gate(path string, run Run, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var base *Run
	for i := len(doc.Runs) - 1; i >= 0; i-- {
		if doc.Runs[i].Suite == run.Suite && doc.Runs[i].Workers == run.Workers {
			base = &doc.Runs[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("baseline %s has no run with suite=%s workers=%d", path, run.Suite, run.Workers)
	}
	if len(base.Circuits) != len(run.Circuits) {
		return fmt.Errorf("baseline run has %d circuits, measured %d", len(base.Circuits), len(run.Circuits))
	}
	for i, b := range base.Circuits {
		c := run.Circuits[i]
		if c.Name != b.Name {
			return fmt.Errorf("circuit %d: baseline %s vs measured %s", i, b.Name, c.Name)
		}
		if c.Wirelength != b.Wirelength || c.Vias != b.Vias {
			return fmt.Errorf("%s: metrics diverged from baseline (wl %d vs %d, vias %d vs %d) — routing is deterministic, this is a correctness regression",
				c.Name, c.Wirelength, b.Wirelength, c.Vias, b.Vias)
		}
	}
	if limit := int64(float64(base.TotalNsPerRoute) * tolerance); run.TotalNsPerRoute > limit {
		return fmt.Errorf("suite took %d ns vs baseline %d ns — exceeds %.1fx tolerance",
			run.TotalNsPerRoute, base.TotalNsPerRoute, tolerance)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
