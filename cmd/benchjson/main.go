// Command benchjson runs the routing-only benchmark (the workload of
// BenchmarkRoutingOnly, extended to the whole suite) and records the
// result as JSON, so performance numbers accumulate as comparable
// artifacts instead of scrollback.
//
// Usage:
//
//	benchjson [-label after] [-iters 3] [-workers 1] [-out BENCH_1.json]
//
// Without -out it writes the first free BENCH_<n>.json in the current
// directory. When -out names an existing file the new run is appended
// to its "runs" list — a before/after trajectory lives in one file.
// The suite is the tiny suite by default; REPRO_BENCH_SCALE=N selects
// the Table I circuits shrunk by factor N, as in the Go benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"

	sadproute "repro"
)

// File is the on-disk BENCH_<n>.json document.
type File struct {
	Benchmark string `json:"benchmark"`
	Runs      []Run  `json:"runs"`
}

// Run is one measured pass over the suite.
type Run struct {
	Label     string    `json:"label"`
	Date      string    `json:"date"`
	GoVersion string    `json:"go"`
	Suite     string    `json:"suite"`
	Workers   int       `json:"workers"`
	Iters     int       `json:"iters"`
	Circuits  []Circuit `json:"circuits"`
	// TotalNsPerRoute sums the per-circuit minima: the suite's
	// routing-only ns/op.
	TotalNsPerRoute int64 `json:"total_ns_per_route"`
}

// Circuit is one circuit's result; NsPerRoute is the minimum over the
// run's iterations (the standard noise-resistant estimator).
type Circuit struct {
	Name       string `json:"name"`
	NsPerRoute int64  `json:"ns_per_route"`
	Wirelength int    `json:"wirelength"`
	Vias       int    `json:"vias"`
}

func main() {
	label := flag.String("label", "run", "label of this run (e.g. seed, after)")
	iters := flag.Int("iters", 3, "routing repetitions per circuit (minimum time is recorded)")
	workers := flag.Int("workers", 1, "router Workers setting")
	out := flag.String("out", "", "output file (default: first free BENCH_<n>.json)")
	flag.Parse()

	suite, suiteName := pickSuite()
	run := Run{
		Label:     *label,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Suite:     suiteName,
		Workers:   *workers,
		Iters:     *iters,
	}
	for _, c := range suite {
		nl := bench.Generate(c)
		var best time.Duration
		var wl, vias int
		for i := 0; i < *iters; i++ {
			start := time.Now()
			res, err := sadproute.Route(nl, sadproute.Config{
				SADP: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
				Workers: *workers,
			})
			if err != nil {
				fail(fmt.Errorf("routing %s: %w", c.Name, err))
			}
			if d := time.Since(start); i == 0 || d < best {
				best = d
			}
			wl, vias = res.Stats.Wirelength, res.Stats.Vias
		}
		run.Circuits = append(run.Circuits, Circuit{
			Name: c.Name, NsPerRoute: best.Nanoseconds(),
			Wirelength: wl, Vias: vias,
		})
		run.TotalNsPerRoute += best.Nanoseconds()
		fmt.Printf("%-8s %12d ns/route  WL %d  #Vias %d\n", c.Name, best.Nanoseconds(), wl, vias)
	}

	path := *out
	doc := File{Benchmark: "RoutingOnly"}
	if path == "" {
		for n := 1; ; n++ {
			path = fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				break
			}
		}
	} else if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fail(fmt.Errorf("existing %s: %w", path, err))
		}
	}
	doc.Runs = append(doc.Runs, run)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d runs, total %d ns/route)\n", path, len(doc.Runs), run.TotalNsPerRoute)
}

func pickSuite() ([]bench.Circuit, string) {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return bench.ScaledSuite(n), fmt.Sprintf("scaled/%d", n)
		}
	}
	return bench.TinySuite(), "tiny"
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
