// Command sadplint runs the repo's custom determinism, lock-
// discipline and cancellation analyzers (see DESIGN.md §11).
//
// Two modes share one binary:
//
//	sadplint ./...              standalone: load packages, analyze,
//	                            print diagnostics, exit 1 if any
//	go vet -vettool=<path>      unit mode: `go vet` drives sadplint
//	                            one compilation unit at a time via
//	                            the -V=full / -flags / foo.cfg
//	                            protocol
//
// Both modes honor //sadplint:ignore <analyzer> <reason> and
// //sadplint:ordered <reason> suppressions; a suppression without a
// reason is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analyzers/lint"
	"repro/internal/analyzers/suite"
)

func main() {
	flagV := flag.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	flagFlags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flagList := flag.Bool("list", false, "list the analyzers and exit")
	flagJSON := flag.Bool("json", false, "standalone mode: print diagnostics as a JSON array")
	flagBaseline := flag.String("baseline", "", "standalone mode: subtract the diagnostics recorded in this file")
	flagUpdate := flag.Bool("update-baseline", false, "standalone mode: rewrite -baseline with the current diagnostics and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sadplint [packages]   (standalone, e.g. sadplint ./...)\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v sadplint) ./...\n\nanalyzers:\n")
		for _, a := range suite.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	switch {
	case *flagV != "":
		if *flagV != "full" {
			fmt.Fprintf(os.Stderr, "sadplint: unsupported flag value: -V=%s (use -V=full)\n", *flagV)
			os.Exit(2)
		}
		lint.PrintVersion()
		return
	case *flagFlags:
		lint.PrintFlagsJSON()
		return
	case *flagList:
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}
	runStandalone(args, *flagJSON, *flagBaseline, *flagUpdate)
}

// runUnit is one `go vet` compilation unit.
func runUnit(cfg string) {
	diags, err := lint.RunUnit(cfg, suite.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadplint: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		// go vet surfaces stderr verbatim; match cmd/vet's
		// file:line:col: message form.
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runStandalone loads whole packages from source.
func runStandalone(patterns []string, asJSON bool, baselinePath string, updateBaseline bool) {
	if updateBaseline && baselinePath == "" {
		fmt.Fprintf(os.Stderr, "sadplint: -update-baseline requires -baseline <file>\n")
		os.Exit(2)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadplint: %v\n", err)
		os.Exit(1)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadplint: %v\n", err)
		os.Exit(1)
	}
	diags, err := lint.RunAnalyzers(pkgs, suite.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadplint: %v\n", err)
		os.Exit(1)
	}
	if updateBaseline {
		if err := lint.WriteBaseline(baselinePath, diags, wd); err != nil {
			fmt.Fprintf(os.Stderr, "sadplint: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sadplint: wrote %d diagnostics to %s\n", len(diags), baselinePath)
		return
	}
	if baselinePath != "" {
		base, err := lint.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sadplint: %v\n", err)
			os.Exit(1)
		}
		diags = base.Filter(diags, wd)
	}
	if asJSON {
		data, err := lint.DiagnosticsJSON(diags, wd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sadplint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", data)
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
