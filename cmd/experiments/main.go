// Command experiments runs the EXPERIMENTS.md capture: every paper
// table on a configurable slice of the scaled benchmark suite. It is
// the harness behind the committed EXPERIMENTS.md numbers.
//
// Usage:
//
//	experiments [-scale 8] [-circuits 5] [-ilptime 10s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
)

func main() {
	scale := flag.Int("scale", 8, "suite shrink factor")
	ncirc := flag.Int("circuits", 6, "how many of the six circuits to run")
	ilpTime := flag.Duration("ilptime", 10*time.Second, "ILP time limit")
	flag.Parse()

	circuits := bench.ScaledSuite(*scale)
	if *ncirc < len(circuits) {
		circuits = circuits[:*ncirc]
	}
	fmt.Printf("suite: scale 1/%d, %d circuits, ILP limit %v\n\n", *scale, len(circuits), *ilpTime)

	emit := func(t *bench.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
	start := time.Now()
	emit(bench.Table1(circuits), nil)
	emit(bench.Table2(), nil)
	emit(bench.TableIIIIV(circuits, coloring.SIM, *ilpTime))
	emit(bench.TableIIIIV(circuits, coloring.SID, *ilpTime))
	emit(bench.TableV(circuits, *ilpTime))
	emit(bench.TableVIVII(circuits, coloring.SIM, *ilpTime))
	emit(bench.TableVIVII(circuits, coloring.SID, *ilpTime))
	fmt.Printf("total wall time: %.1fs\n", time.Since(start).Seconds())
}
