// Command benchgen generates the synthetic benchmark suite (Table I
// shapes) as netlist files.
//
// Usage:
//
//	benchgen [-scale N] [-out DIR]
//
// With -scale 1 the six circuits match Table I's net counts and grid
// sizes exactly; larger scale factors shrink them proportionally for
// quick experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	scale := flag.Int("scale", 1, "shrink factor (1 = full Table I sizes)")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	circuits := bench.ScaledSuite(*scale)
	for _, c := range circuits {
		nl := bench.Generate(c)
		path := filepath.Join(*out, c.Name+".net")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		if err := nl.Write(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("%s: %d nets, %dx%d grid, %d pins\n", path, len(nl.Nets), nl.W, nl.H, nl.NumPins())
	}
}
