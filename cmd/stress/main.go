// Command stress runs the randomized pipeline stress harness: random
// circuits are routed under both SADP modes, both DVI solvers run on
// each instance, and every result is checked by the independent
// internal/verify checker. A failure is shrunk to a minimal reproducer
// and written to -out.
//
// Usage:
//
//	stress [-seed 1] [-budget 30s] [-trials 0] [-ilptime 2s] [-maxpins 0]
//	       [-out dir] [-q]
//
// Exit status 0 means every check passed; 1 means a reproducible
// failure was found (and dumped); 2 means bad usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/stress"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "trial sequence seed (same seed = same trials)")
	budget := flag.Duration("budget", 30*time.Second, "wall-clock budget")
	trials := flag.Int("trials", 0, "additional trial cap (0 = budget only)")
	ilpTime := flag.Duration("ilptime", 2*time.Second, "per-instance ILP time limit")
	maxPins := flag.Int("maxpins", 0, "draw pin counts uniformly from [2, maxpins] (0 = classic 2-pin-heavy mix)")
	out := flag.String("out", "", "directory for the minimal reproducer on failure")
	quiet := flag.Bool("q", false, "suppress per-trial progress")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	cfg := stress.Config{
		Seed:         *seed,
		Budget:       *budget,
		MaxTrials:    *trials,
		ILPTimeLimit: *ilpTime,
		MaxPins:      *maxPins,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Printf("stress: "+format+"\n", args...)
		}
	}

	start := time.Now()
	res, fail := stress.Run(cfg)
	if fail == nil {
		fmt.Printf("stress: OK — %d trials, %d verified pipeline results in %.1fs (seed %d)\n",
			res.Trials, res.Checks, time.Since(start).Seconds(), *seed)
		return 0
	}

	fmt.Fprintf(os.Stderr, "%v\n", fail)
	if fail.Report != nil {
		for i, v := range fail.Report.Violations {
			if i >= 10 {
				fmt.Fprintln(os.Stderr, "  ...")
				break
			}
			fmt.Fprintf(os.Stderr, "  %v\n", v)
		}
	}
	if *out != "" {
		path, err := fail.WriteFiles(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stress: writing reproducer: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "stress: minimal reproducer written to %s\n", path)
		}
	}
	return 1
}
