// Command dvitool routes a netlist once and then solves the
// post-routing TPL-aware DVI problem with BOTH the exact ILP and the
// fast heuristic, reporting the comparison of Tables VI/VII (dead
// vias, uncolorable vias, CPU, speedup) on that single circuit.
//
// Usage:
//
//	dvitool -in circuit.net [-sadp sim|sid] [-ilptime 60s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/geom"
	"repro/internal/netlist"

	sadproute "repro"
)

func main() {
	in := flag.String("in", "", "input netlist file (required)")
	sadp := flag.String("sadp", "sim", "SADP type: sim or sid")
	ilpTime := flag.Duration("ilptime", time.Minute, "ILP time limit")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	nl, err := netlist.Read(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	typ := coloring.SIM
	if *sadp == "sid" {
		typ = coloring.SID
	}

	// Routing solutions for the DVI comparison are produced with both
	// considerations on, exactly as in §IV-B.
	res, err := sadproute.Route(nl, sadproute.Config{SADP: typ, ConsiderDVI: true, ConsiderTPL: true})
	if err != nil {
		fail(err)
	}
	in2 := res.DVIInstance()
	fmt.Printf("%s (%s): %d single vias, %d feasible DVICs\n",
		nl.Name, typ, len(in2.Vias), totalCands(in2.Feas))

	t0 := time.Now()
	heur := in2.SolveHeuristic(dvi.DefaultHeurParams())
	heurCPU := time.Since(t0)
	if err := heur.Validate(in2); err != nil {
		fail(fmt.Errorf("heuristic solution invalid: %w", err))
	}

	t0 = time.Now()
	ilpSol, err := in2.SolveILP(dvi.ILPOptions{TimeLimit: *ilpTime})
	ilpCPU := time.Since(t0)
	if err != nil {
		fail(err)
	}
	if err := ilpSol.Validate(in2); err != nil {
		fail(fmt.Errorf("ILP solution invalid: %w", err))
	}

	fmt.Printf("%-10s %8s %8s %10s\n", "", "#DV", "#UV", "CPU(s)")
	fmt.Printf("%-10s %8d %8d %10.2f\n", "ILP", ilpSol.DeadVias, ilpSol.Uncolorable, ilpCPU.Seconds())
	fmt.Printf("%-10s %8d %8d %10.2f\n", "Heuristic", heur.DeadVias, heur.Uncolorable, heurCPU.Seconds())
	if heurCPU > 0 && ilpSol.DeadVias > 0 {
		fmt.Printf("speedup %.1fx, heuristic dead-via overhead %+.1f%%\n",
			float64(ilpCPU)/float64(heurCPU),
			100*float64(heur.DeadVias-ilpSol.DeadVias)/float64(ilpSol.DeadVias))
	}
}

func totalCands(feas [][]geom.Pt) int {
	n := 0
	for _, f := range feas {
		n += len(f)
	}
	return n
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dvitool: %v\n", err)
	os.Exit(1)
}
