package sadproute

// The benchmark harness: one testing.B benchmark per table of the
// paper's evaluation (§IV), plus micro-benchmarks for the pieces the
// experiment index in DESIGN.md calls out. Benchmarks default to the
// tiny suite so `go test -bench=.` completes in minutes; set
// REPRO_BENCH_SCALE=N to run the Table I circuits shrunk by factor N
// (REPRO_BENCH_SCALE=1 is the full paper scale and takes hours, as the
// paper's own Gurobi runs did).

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/router"
)

func benchSuite() []bench.Circuit {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return bench.ScaledSuite(n)
		}
	}
	return bench.TinySuite()
}

func benchILPLimit() time.Duration {
	if s := os.Getenv("REPRO_BENCH_ILPTIME"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			return d
		}
	}
	return 15 * time.Second
}

// BenchmarkTable1Stats regenerates the benchmark statistics (Table I):
// netlist generation and validation across the suite.
func BenchmarkTable1Stats(b *testing.B) {
	suite := benchSuite()
	for i := 0; i < b.N; i++ {
		pins := 0
		for _, c := range suite {
			nl := bench.Generate(c)
			pins += nl.NumPins()
		}
		b.ReportMetric(float64(pins), "pins")
	}
}

// benchTable34 runs the four-configuration routing comparison of
// Tables III/IV for one SADP type and reports the headline metrics.
func benchTable34(b *testing.B, typ coloring.SADPType) {
	suite := benchSuite()
	limit := benchILPLimit()
	for i := 0; i < b.N; i++ {
		var baseDV, fullDV, baseUV, fullUV int
		for _, c := range suite {
			nl := bench.Generate(c)
			base, _, err := bench.Run(nl, bench.RunSpec{
				Scheme: typ, Method: bench.ILPDVI, ILPTimeLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			full, _, err := bench.Run(nl, bench.RunSpec{
				Scheme: typ, ConsiderDVI: true, ConsiderTPL: true,
				Method: bench.ILPDVI, ILPTimeLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			baseDV += base.DV
			fullDV += full.DV
			baseUV += base.UV
			fullUV += full.UV
		}
		b.ReportMetric(float64(baseDV), "base-deadvias")
		b.ReportMetric(float64(fullDV), "full-deadvias")
		b.ReportMetric(float64(baseUV), "base-uncolorable")
		b.ReportMetric(float64(fullUV), "full-uncolorable")
	}
}

// BenchmarkTable3SIM: SIM-type routing, baseline vs full consideration
// (Table III shape: dead vias shrink, uncolorable vias go to zero).
func BenchmarkTable3SIM(b *testing.B) { benchTable34(b, coloring.SIM) }

// BenchmarkTable4SID: the SID-type counterpart (Table IV).
func BenchmarkTable4SID(b *testing.B) { benchTable34(b, coloring.SID) }

// BenchmarkTable5ParamAblation compares the conference-version cost
// parameters against the enlarged journal parameters (Table V).
func BenchmarkTable5ParamAblation(b *testing.B) {
	suite := benchSuite()
	limit := benchILPLimit()
	for i := 0; i < b.N; i++ {
		var confDV, fullDV int
		for _, c := range suite {
			nl := bench.Generate(c)
			conf, _, err := bench.Run(nl, bench.RunSpec{
				Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
				Params: router.ConferenceParams(), Method: bench.ILPDVI, ILPTimeLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			full, _, err := bench.Run(nl, bench.RunSpec{
				Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
				Method: bench.ILPDVI, ILPTimeLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			confDV += conf.DV
			fullDV += full.DV
		}
		b.ReportMetric(float64(confDV), "conf-deadvias")
		b.ReportMetric(float64(fullDV), "full-deadvias")
	}
}

// benchTable67 compares the ILP and heuristic DVI solvers (Tables
// VI/VII): same dead-via ballpark, orders-of-magnitude CPU gap.
func benchTable67(b *testing.B, typ coloring.SADPType) {
	suite := benchSuite()
	limit := benchILPLimit()
	// Route once outside the timed loop; the benchmark measures DVI.
	type prepared struct {
		in *dvi.Instance
	}
	var insts []prepared
	for _, c := range suite {
		nl := bench.Generate(c)
		_, art, err := bench.Run(nl, bench.RunSpec{
			Scheme: typ, ConsiderDVI: true, ConsiderTPL: true, Method: bench.NoDVI,
		})
		if err != nil {
			b.Fatal(err)
		}
		insts = append(insts, prepared{in: dvi.NewInstance(art.Router.Grid(), art.Router.Routes())})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ilpDV, heurDV int
		var ilpCPU, heurCPU time.Duration
		for _, p := range insts {
			t0 := time.Now()
			h := p.in.SolveHeuristic(dvi.DefaultHeurParams())
			heurCPU += time.Since(t0)
			t0 = time.Now()
			s, err := p.in.SolveILP(dvi.ILPOptions{TimeLimit: limit})
			if err != nil {
				b.Fatal(err)
			}
			ilpCPU += time.Since(t0)
			ilpDV += s.DeadVias
			heurDV += h.DeadVias
		}
		b.ReportMetric(float64(ilpDV), "ilp-deadvias")
		b.ReportMetric(float64(heurDV), "heur-deadvias")
		if heurCPU > 0 {
			b.ReportMetric(float64(ilpCPU)/float64(heurCPU), "speedup-x")
		}
	}
}

// BenchmarkTable6DVISIM: TPL-aware DVI, ILP vs heuristic on SIM
// solutions (Table VI).
func BenchmarkTable6DVISIM(b *testing.B) { benchTable67(b, coloring.SIM) }

// BenchmarkTable7DVISID: the SID counterpart (Table VII).
func BenchmarkTable7DVISID(b *testing.B) { benchTable67(b, coloring.SID) }

// BenchmarkRoutingOnly measures the detailed router alone with full
// consideration, the "CPU" column driver of Tables III/IV.
func BenchmarkRoutingOnly(b *testing.B) {
	nl := bench.Generate(benchSuite()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Route(nl, Config{SADP: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Wirelength), "wirelength")
	}
}

// BenchmarkHeuristicDVIOnly isolates Algorithm 3 (the Tables VI/VII
// heuristic columns).
func BenchmarkHeuristicDVIOnly(b *testing.B) {
	nl := bench.Generate(benchSuite()[0])
	res, err := Route(nl, Config{SADP: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true})
	if err != nil {
		b.Fatal(err)
	}
	in := res.DVIInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := in.SolveHeuristic(dvi.DefaultHeurParams())
		b.ReportMetric(float64(s.DeadVias), "deadvias")
	}
}
