package sadproute

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
)

func TestFacadeEndToEnd(t *testing.T) {
	nl := bench.Generate(bench.TinySuite()[0])
	res, err := Route(nl, Config{SADP: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Routability != 1 {
		t.Fatalf("routability %v", res.Stats.Routability)
	}
	sol, err := res.InsertDoubleVias(Heuristic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(res.DVIInstance()); err != nil {
		t.Fatal(err)
	}
	if sol.Uncolorable != 0 {
		t.Errorf("heuristic left %d uncolorable vias", sol.Uncolorable)
	}
	dec := res.CheckDecomposition()
	if hv := dec.HardViolations(); len(hv) != 0 {
		t.Errorf("solution not SADP decomposable: %v", hv[0])
	}
}

func TestFacadeILP(t *testing.T) {
	nl := bench.Generate(bench.TinySuite()[0])
	res, err := Route(nl, Config{SADP: coloring.SID, ConsiderDVI: true, ConsiderTPL: true})
	if err != nil {
		t.Fatal(err)
	}
	heur, err := res.InsertDoubleVias(Heuristic, 0)
	if err != nil {
		t.Fatal(err)
	}
	ilpSol, err := res.InsertDoubleVias(ILP, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ilpSol.DeadVias > heur.DeadVias {
		t.Errorf("ILP dead vias %d > heuristic %d", ilpSol.DeadVias, heur.DeadVias)
	}
}

func TestFacadeRejectsInvalid(t *testing.T) {
	nl := bench.Generate(bench.TinySuite()[0])
	nl.W = 0
	if _, err := Route(nl, Config{}); err == nil {
		t.Fatal("invalid netlist accepted")
	}
}
