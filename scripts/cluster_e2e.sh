#!/usr/bin/env bash
# Cluster differential e2e: proves the distributed invariant from the
# outside, with real processes and real kill -9.
#
#   1. Standalone reference: one sadprouted routes the job set.
#   2. Worker-kill scenario: coordinator + worker A; A is killed -9
#      mid-run; worker B joins; every job must finish with results
#      byte-identical to the standalone run (leases expired, jobs
#      re-placed, nothing lost or double-completed).
#   3. Coordinator-crash scenario: the coordinator itself is killed -9
#      while a job is leased, restarted on the same address and
#      journal; the job must replay and finish identically.
#   4. Network-chaos sweep: for each preset in CHAOS_PRESETS (latency,
#      corrupt, slow, spool) the coordinator runs with -verify-uploads
#      and the worker with -chaos <preset>; corrupted uploads must be
#      rejected and re-placed, stragglers hedged, spooled results
#      replayed — always byte-identical to standalone.
#
# SCENARIOS selects which fault sections run (the standalone reference
# always does): any of "kill crash chaos". The CI matrix uses this to
# run each chaos preset as its own job.
#
# Results are compared as jq projections of {wl, vias, dv, uv,
# solution}: the solution payload is the full routed geometry and is
# required byte-identical; CPU-time fields are excluded by
# construction. On failure the projections are left in $WORK for
# artifact upload.
set -euo pipefail

BIN=${BIN:-/tmp/sadprouted}
BENCHGEN=${BENCHGEN:-/tmp/benchgen}
WORK=${WORK:-$(mktemp -d /tmp/cluster-e2e.XXXXXX)}
# div-s at scale 4 routes in ~1s — long enough to reliably kill a
# process mid-job; the -s siblings are quick fillers that make the
# re-placement shuffle non-trivial.
CIRCUITS=${CIRCUITS:-"ecc-s efc-s ctl-s div-s"}
SCENARIOS=${SCENARIOS:-"kill crash chaos"}
CHAOS_CIRCUITS=${CHAOS_CIRCUITS:-"ecc-s efc-s ctl-s"}
CHAOS_PRESETS=${CHAOS_PRESETS:-"latency corrupt slow spool"}

run_scenario() { case " $SCENARIOS " in *" $1 "*) return 0;; *) return 1;; esac; }

echo "== cluster e2e: workdir $WORK"
# Always rebuild: a stale binary from an earlier checkout silently
# rejects newer RunSpec fields. Incremental builds make this cheap.
go build -o "$BIN" ./cmd/sadprouted
go build -o "$BENCHGEN" ./cmd/benchgen

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

mkdir -p "$WORK/nets"
"$BENCHGEN" -scale 4 -out "$WORK/nets" > /dev/null

SPEC='{scheme: "sim", consider_dvi: true, consider_tpl: true, method: "heur", verify: true, include_solution: true}'
for c in $CIRCUITS; do
  jq -Rs "{netlist: ., spec: $SPEC}" "$WORK/nets/$c.net" > "$WORK/$c.job.json"
done

wait_addr() { # $1=addr-file
  for _ in $(seq 100); do [ -s "$1" ] && { cat "$1"; return 0; }; sleep 0.1; done
  echo "no listen address in $1" >&2; return 1
}

submit() { # $1=addr $2=circuit -> job id
  curl -sf -d @"$WORK/$2.job.json" "http://$1/v1/jobs" | jq -r .id
}

job_status() { # $1=addr $2=job-id
  curl -sf "http://$1/v1/jobs/$2" | jq -r .status
}

poll_projection() { # $1=addr $2=job-id $3=output-file
  local status=queued
  for _ in $(seq 600); do
    status=$(job_status "$1" "$2")
    [ "$status" = done ] && break
    [ "$status" = failed ] && { curl -s "http://$1/v1/jobs/$2" | jq .; return 1; }
    sleep 0.2
  done
  [ "$status" = done ] || { echo "job $2 stuck in $status" >&2; return 1; }
  curl -sf "http://$1/v1/jobs/$2" | jq -e '.result.verify.ok == true' > /dev/null
  curl -sf "http://$1/v1/jobs/$2" | \
    jq '{wl: .result.row.wl, vias: .result.row.vias, dv: .result.row.dv, uv: .result.row.uv, solution: .result.solution}' > "$3"
}

# ---- 1. Standalone reference -------------------------------------
echo "== standalone reference"
rm -f "$WORK/ref.addr"
"$BIN" -addr 127.0.0.1:0 -addr-file "$WORK/ref.addr" -workers 2 -quiet > "$WORK/ref.log" 2>&1 &
REF_PID=$!; PIDS+=("$REF_PID")
ADDR=$(wait_addr "$WORK/ref.addr")
declare -A REF_JOB
for c in $CIRCUITS; do REF_JOB[$c]=$(submit "$ADDR" "$c"); done
for c in $CIRCUITS; do poll_projection "$ADDR" "${REF_JOB[$c]}" "$WORK/ref.$c.json"; done
kill -TERM $REF_PID; wait $REF_PID

# ---- 2. Coordinator + 2 workers, one killed mid-run --------------
if run_scenario kill; then
echo "== cluster: worker killed -9 mid-run"
rm -f "$WORK/coord.addr"
"$BIN" -mode coordinator -addr 127.0.0.1:0 -addr-file "$WORK/coord.addr" \
  -data-dir "$WORK/coord-data" -lease-ttl 2s -quiet > "$WORK/coord.log" 2>&1 &
COORD_PID=$!; PIDS+=("$COORD_PID")
ADDR=$(wait_addr "$WORK/coord.addr")
"$BIN" -mode worker -coordinator-addr "http://$ADDR" -worker-id wA -workers 1 -quiet > "$WORK/wA.log" 2>&1 &
WA_PID=$!; PIDS+=("$WA_PID")

declare -A CL_JOB
for c in $CIRCUITS; do CL_JOB[$c]=$(submit "$ADDR" "$c"); done
# Kill worker A the moment the long job is running on it.
for _ in $(seq 300); do
  [ "$(job_status "$ADDR" "${CL_JOB[div-s]}")" = running ] && break
  sleep 0.05
done
kill -9 $WA_PID; wait $WA_PID 2>/dev/null || true
echo "   worker A killed while div-s was $(job_status "$ADDR" "${CL_JOB[div-s]}")"
"$BIN" -mode worker -coordinator-addr "http://$ADDR" -worker-id wB -workers 2 -quiet > "$WORK/wB.log" 2>&1 &
WB_PID=$!; PIDS+=("$WB_PID")

for c in $CIRCUITS; do poll_projection "$ADDR" "${CL_JOB[$c]}" "$WORK/cluster.$c.json"; done
curl -sf "http://$ADDR/metrics" | grep -E '^sadprouted_cluster_requeues_total [1-9]' > /dev/null \
  || { echo "expected at least one cluster requeue" >&2; exit 1; }
# Exactly one completion per job: nothing lost, nothing duplicated.
COMPLETED=$(curl -sf "http://$ADDR/metrics" | awk '/^sadprouted_jobs_completed_total /{print $2}')
[ "$COMPLETED" = "$(echo $CIRCUITS | wc -w)" ] \
  || { echo "completed=$COMPLETED, want $(echo $CIRCUITS | wc -w)" >&2; exit 1; }
kill -TERM $WB_PID; wait $WB_PID 2>/dev/null || true
kill -TERM $COORD_PID; wait $COORD_PID

for c in $CIRCUITS; do
  diff "$WORK/ref.$c.json" "$WORK/cluster.$c.json" \
    || { echo "worker-kill scenario: $c diverged from standalone" >&2; exit 1; }
done
echo "   worker-kill scenario byte-identical to standalone"
fi

# ---- 3. Coordinator killed -9 mid-dispatch, journal replay -------
if run_scenario crash; then
echo "== cluster: coordinator killed -9 mid-dispatch"
rm -f "$WORK/coord2.addr"
"$BIN" -mode coordinator -addr 127.0.0.1:0 -addr-file "$WORK/coord2.addr" \
  -data-dir "$WORK/coord2-data" -lease-ttl 2s -quiet > "$WORK/coord2.log" 2>&1 &
COORD_PID=$!; PIDS+=("$COORD_PID")
ADDR=$(wait_addr "$WORK/coord2.addr")
"$BIN" -mode worker -coordinator-addr "http://$ADDR" -worker-id wC -workers 1 -quiet > "$WORK/wC.log" 2>&1 &
WC_PID=$!; PIDS+=("$WC_PID")

JOB=$(submit "$ADDR" div-s)
for _ in $(seq 300); do
  [ "$(job_status "$ADDR" "$JOB")" = running ] && break
  sleep 0.05
done
kill -9 $COORD_PID; wait $COORD_PID 2>/dev/null || true
echo "   coordinator killed while $JOB was leased to wC"
# Restart on the SAME address and journal: the leased-but-unfinished
# job replays as queued; the surviving worker reconnects (its pull
# loop retries) and the job completes exactly once.
"$BIN" -mode coordinator -addr "$ADDR" -data-dir "$WORK/coord2-data" -lease-ttl 2s -quiet > "$WORK/coord2b.log" 2>&1 &
COORD_PID=$!; PIDS+=("$COORD_PID")
for _ in $(seq 100); do curl -sf "http://$ADDR/healthz" > /dev/null 2>&1 && break; sleep 0.1; done

poll_projection "$ADDR" "$JOB" "$WORK/replayed.div-s.json"
diff "$WORK/ref.div-s.json" "$WORK/replayed.div-s.json" \
  || { echo "coordinator-crash scenario: div-s diverged from standalone" >&2; exit 1; }
COMPLETED=$(curl -sf "http://$ADDR/metrics" | awk '/^sadprouted_jobs_completed_total /{print $2}')
[ "$COMPLETED" = 1 ] || { echo "completed=$COMPLETED after replay, want 1" >&2; exit 1; }
echo "   coordinator-crash scenario byte-identical to standalone"

kill -TERM $WC_PID; wait $WC_PID 2>/dev/null || true
kill -TERM $COORD_PID; wait $COORD_PID
fi

# ---- 4. Network-chaos sweep --------------------------------------
chaos_run() { # $1=preset
  local preset=$1
  echo "== chaos preset: $preset (verified uploads on)"
  rm -f "$WORK/chaos.addr"
  local coord_flags=(-mode coordinator -addr 127.0.0.1:0 -addr-file "$WORK/chaos.addr"
    -data-dir "$WORK/chaos-$preset-data" -lease-ttl 2s -max-attempts 4 -verify-uploads -quiet)
  if [ "$preset" = slow ]; then
    coord_flags+=(-hedge-multiple 4 -hedge-min-samples 2)
  fi
  "$BIN" "${coord_flags[@]}" > "$WORK/chaos-$preset-coord.log" 2>&1 &
  local coord_pid=$!; PIDS+=("$coord_pid")
  local addr; addr=$(wait_addr "$WORK/chaos.addr")

  local worker_flags=(-mode worker -coordinator-addr "http://$addr" -worker-id cw1 -workers 1
    -chaos "$preset" -chaos-seed 11 -quiet)
  if [ "$preset" = spool ]; then
    worker_flags+=(-spool-dir "$WORK/chaos-$preset-spool")
  fi
  "$BIN" "${worker_flags[@]}" > "$WORK/chaos-$preset-w1.log" 2>&1 &
  local w1_pid=$!; PIDS+=("$w1_pid")
  local w2_pid=""
  if [ "$preset" = slow ]; then
    # The hedge needs a healthy peer to land on.
    "$BIN" -mode worker -coordinator-addr "http://$addr" -worker-id cw2 -workers 2 -quiet \
      > "$WORK/chaos-$preset-w2.log" 2>&1 &
    w2_pid=$!; PIDS+=("$w2_pid")
  fi

  local -A JOB
  local c
  for c in $CHAOS_CIRCUITS; do JOB[$c]=$(submit "$addr" "$c"); done

  if [ "$preset" = spool ]; then
    # The chaos site kills the worker right after it spools its first
    # result; restart it (same identity, same spool) and let the
    # replay confirm the result without recomputing.
    wait "$w1_pid" 2>/dev/null || true
    echo "   worker cw1 died post-spool, restarting for replay"
    "$BIN" -mode worker -coordinator-addr "http://$addr" -worker-id cw1 -workers 1 \
      -spool-dir "$WORK/chaos-$preset-spool" -quiet > "$WORK/chaos-$preset-w1b.log" 2>&1 &
    w1_pid=$!; PIDS+=("$w1_pid")
  fi

  for c in $CHAOS_CIRCUITS; do
    poll_projection "$addr" "${JOB[$c]}" "$WORK/chaos-$preset.$c.json"
    diff "$WORK/ref.$c.json" "$WORK/chaos-$preset.$c.json" \
      || { echo "chaos $preset: $c diverged from standalone" >&2; exit 1; }
  done
  local completed
  completed=$(curl -sf "http://$addr/metrics" | awk '/^sadprouted_jobs_completed_total /{print $2}')
  [ "$completed" = "$(echo $CHAOS_CIRCUITS | wc -w)" ] \
    || { echo "chaos $preset: completed=$completed, want $(echo $CHAOS_CIRCUITS | wc -w)" >&2; exit 1; }
  if [ "$preset" = corrupt ]; then
    # Both wire flips must have forced a re-placement (validator
    # reject or dropped envelope + lease expiry — either way the job
    # was re-placed, never stored corrupted).
    curl -sf "http://$addr/metrics" | grep -E '^sadprouted_cluster_requeues_total [1-9]' > /dev/null \
      || { echo "chaos $preset: corrupted uploads never forced a re-placement" >&2; exit 1; }
  fi
  if [ "$preset" = spool ]; then
    curl -sf "http://$addr/metrics" | grep -E '^sadprouted_cluster_spool_replays_total [1-9]' > /dev/null \
      || { echo "chaos $preset: no spool replay recorded" >&2; exit 1; }
  fi
  kill -TERM "$w1_pid" 2>/dev/null || true; wait "$w1_pid" 2>/dev/null || true
  if [ -n "$w2_pid" ]; then
    kill -TERM "$w2_pid" 2>/dev/null || true; wait "$w2_pid" 2>/dev/null || true
  fi
  kill -TERM "$coord_pid"; wait "$coord_pid"
  echo "   chaos $preset byte-identical to standalone"
}

if run_scenario chaos; then
  for preset in $CHAOS_PRESETS; do chaos_run "$preset"; done
fi

echo "== cluster e2e OK"
